//! Offline stand-in for the `polling` crate: portable OS readiness
//! events with the real crate's API shape (`Poller::new` / `add` /
//! `modify` / `delete` / `wait` / `notify`).
//!
//! On Linux x86_64 and aarch64 this is genuine **epoll**, reached by
//! raw syscalls (`core::arch::asm!`) because the workspace links no
//! libc crate. Registration is level-triggered: a source with buffered
//! input keeps reporting readable until drained, so callers may handle
//! *less* than everything per wakeup without losing events.
//!
//! On other unix targets a degraded fallback poller keeps the same
//! contract by reporting every registered source as "maybe ready" on a
//! short tick. Readiness is a *hint* in both cases — callers must treat
//! `WouldBlock` from the subsequent read/write as "not actually ready",
//! which is exactly what correct epoll code does anyway (spurious
//! wakeups are legal).
//!
//! `notify()` wakes a blocked `wait()` from another thread. It is built
//! on a loopback TCP pair rather than an eventfd so the fallback path
//! needs nothing arch-specific; the reader side is registered under a
//! reserved key that is never surfaced to callers.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Duration;

/// Key reserved for the internal notify channel; [`Poller::add`]
/// rejects it.
pub const NOTIFY_KEY: usize = usize::MAX;

/// Interest in (or occurrence of) readiness on one source, carrying the
/// caller's opaque `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier returned with the readiness report.
    pub key: usize,
    /// Readable (or read-closed: hangup reports as readable so a read
    /// can observe the EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest — keeps the registration but reports nothing (used
    /// to pause reading for backpressure without a delete/add churn).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// The notify channel: a loopback TCP pair whose read side lives in the
/// poll set under [`NOTIFY_KEY`].
struct Waker {
    reader: TcpStream,
    writer: TcpStream,
}

impl Waker {
    fn new() -> io::Result<Waker> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let writer = TcpStream::connect(listener.local_addr()?)?;
        let (reader, _) = listener.accept()?;
        writer.set_nodelay(true)?;
        writer.set_nonblocking(true)?;
        reader.set_nonblocking(true)?;
        Ok(Waker { reader, writer })
    }

    fn wake(&self) -> io::Result<()> {
        match io::Write::write(&mut (&self.writer), &[1u8]) {
            Ok(_) => Ok(()),
            // A full socket buffer means wakeups are already pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consume pending wakeups so level-triggered polling quiesces.
    fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = io::Read::read(&mut (&self.reader), &mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

/// A readiness poller over a set of registered sources.
pub struct Poller {
    backend: sys::Backend,
    waker: Waker,
}

impl Poller {
    /// Create an empty poller.
    pub fn new() -> io::Result<Poller> {
        let backend = sys::Backend::new()?;
        let waker = Waker::new()?;
        backend.add(waker.reader.as_raw_fd(), Event::readable(NOTIFY_KEY))?;
        Ok(Poller { backend, waker })
    }

    /// Register `source` with the given interest. The source must stay
    /// open until [`Poller::delete`]; keys need not be unique.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        self.backend.add(source.as_raw_fd(), interest)
    }

    /// Replace the interest of an already-registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "key usize::MAX is reserved for notify",
            ));
        }
        self.backend.modify(source.as_raw_fd(), interest)
    }

    /// Remove a source from the poll set. Must be called before the
    /// source is closed (closing first leaves a stale registration on
    /// the degraded backend).
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.backend.delete(source.as_raw_fd())
    }

    /// Block until at least one source is ready, `timeout` passes
    /// (`None` = forever), or [`Poller::notify`] is called. Ready
    /// events are appended to `events`; returns how many were added.
    /// Spurious wakeups (zero events) are legal.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let before = events.len();
        self.backend.wait(events, timeout)?;
        // Surface everything except the internal notify channel, which
        // is drained here so it stops reporting ready.
        let mut notified = false;
        events.retain(|ev| {
            if ev.key == NOTIFY_KEY {
                notified = true;
                false
            } else {
                true
            }
        });
        if notified {
            self.waker.drain();
        }
        Ok(events.len() - before)
    }

    /// Wake a concurrent [`Poller::wait`] from any thread.
    pub fn notify(&self) -> io::Result<()> {
        self.waker.wake()
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! Real epoll via raw syscalls (no libc crate in the workspace; std
    //! is still used for everything that has a std API, which epoll
    //! does not).

    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: usize = 0x80000;
    const EPOLL_CTL_ADD: usize = 1;
    const EPOLL_CTL_DEL: usize = 2;
    const EPOLL_CTL_MOD: usize = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const CLOSE: usize = 3;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_PWAIT: usize = 281;
        pub const EPOLL_CREATE1: usize = 291;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const CLOSE: usize = 57;
        pub const EPOLL_CTL: usize = 21;
        pub const EPOLL_PWAIT: usize = 22;
        pub const EPOLL_CREATE1: usize = 20;
    }

    /// The kernel's epoll_event. x86_64 packs it to 12 bytes; other
    /// architectures use natural (16-byte) layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall(nr: usize, args: [usize; 6]) -> isize {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") nr as isize => ret,
            in("rdi") args[0],
            in("rsi") args[1],
            in("rdx") args[2],
            in("r10") args[3],
            in("r8") args[4],
            in("r9") args[5],
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall(nr: usize, args: [usize; 6]) -> isize {
        let ret: isize;
        core::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") args[0] => ret,
            in("x1") args[1],
            in("x2") args[2],
            in("x3") args[3],
            in("x4") args[4],
            in("x5") args[5],
            options(nostack),
        );
        ret
    }

    /// Convert a raw syscall return (negative errno convention) into an
    /// `io::Result`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    fn interest_bits(interest: Event) -> u32 {
        let mut bits = EPOLLRDHUP; // always observe peer half-close
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub struct Backend {
        epfd: RawFd,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            let epfd = check(unsafe { syscall(nr::EPOLL_CREATE1, [EPOLL_CLOEXEC, 0, 0, 0, 0, 0]) })?
                as RawFd;
            Ok(Backend { epfd })
        }

        fn ctl(&self, op: usize, fd: RawFd, interest: Option<Event>) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            let ptr = match interest {
                Some(interest) => {
                    ev.events = interest_bits(interest);
                    ev.data = interest.key as u64;
                    &mut ev as *mut EpollEvent as usize
                }
                // DEL ignores the event argument (NULL is allowed on
                // kernels >= 2.6.9).
                None => 0,
            };
            check(unsafe {
                syscall(
                    nr::EPOLL_CTL,
                    [self.epfd as usize, op, fd as usize, ptr, 0, 0],
                )
            })
            .map(|_| ())
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some(interest))
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some(interest))
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            const MAX_EVENTS: usize = 256;
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout_ms: isize = match timeout {
                None => -1,
                Some(t) => t.as_millis().min(i32::MAX as u128) as isize,
            };
            let n = loop {
                let ret = unsafe {
                    syscall(
                        nr::EPOLL_PWAIT,
                        [
                            self.epfd as usize,
                            buf.as_mut_ptr() as usize,
                            MAX_EVENTS,
                            timeout_ms as usize,
                            0, // no signal mask
                            8, // sigsetsize
                        ],
                    )
                };
                match check(ret) {
                    Ok(n) => break n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for raw in buf.iter().take(n) {
                let bits = raw.events;
                let closed = bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0;
                events.push(Event {
                    key: raw.data as usize,
                    // Errors and hangups report as readable so the
                    // caller's read observes the EOF/err directly.
                    readable: bits & EPOLLIN != 0 || closed,
                    writable: bits & EPOLLOUT != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Backend {
        fn drop(&mut self) {
            unsafe {
                syscall(nr::CLOSE, [self.epfd as usize, 0, 0, 0, 0, 0]);
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    //! Degraded portable backend: every registered source is reported
    //! as ready (with its full interest) once per short tick. Callers
    //! already treat readiness as a hint and handle `WouldBlock`, so
    //! this preserves correctness at the cost of idle CPU — acceptable
    //! for a stand-in on targets without the epoll fast path.

    use super::Event;
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const TICK: Duration = Duration::from_millis(2);

    pub struct Backend {
        registered: Mutex<HashMap<RawFd, Event>>,
    }

    impl Backend {
        pub fn new() -> io::Result<Backend> {
            Ok(Backend {
                registered: Mutex::new(HashMap::new()),
            })
        }

        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller registry poisoned")
                .insert(fd, interest);
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller registry poisoned")
                .insert(fd, interest);
            Ok(())
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.registered
                .lock()
                .expect("poller registry poisoned")
                .remove(&fd);
            Ok(())
        }

        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            std::thread::sleep(timeout.map_or(TICK, |t| t.min(TICK)));
            let registered = self.registered.lock().expect("poller registry poisoned");
            for interest in registered.values() {
                if interest.readable || interest.writable || interest.key == super::NOTIFY_KEY {
                    events.push(*interest);
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    fn tcp_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::readable(7)).unwrap();

        let mut events = Vec::new();
        // Nothing pending: a bounded wait comes back (possibly empty).
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| e.key == 7));

        a.write_all(b"x").unwrap();
        a.flush().unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.is_empty() && std::time::Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(
            events.iter().any(|e| e.key == 7 && e.readable),
            "{events:?}"
        );
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 1);
        poller.delete(&b).unwrap();
    }

    #[test]
    fn level_triggered_readiness_persists_until_drained() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::readable(1)).unwrap();
        a.write_all(b"abc").unwrap();
        a.flush().unwrap();
        for _ in 0..2 {
            let mut events = Vec::new();
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while events.is_empty() && std::time::Instant::now() < deadline {
                poller
                    .wait(&mut events, Some(Duration::from_millis(100)))
                    .unwrap();
            }
            // Undrained input keeps reporting: that's the contract the
            // reactor's partial-read handling depends on.
            assert!(events.iter().any(|e| e.key == 1 && e.readable));
        }
    }

    #[test]
    fn modify_to_none_pauses_reporting_on_epoll() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::readable(3)).unwrap();
        a.write_all(b"x").unwrap();
        poller.modify(&b, Event::none(3)).unwrap();
        // Only meaningful on the epoll backend; the degraded backend
        // may still tick sources, which callers tolerate.
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert!(events.is_empty(), "{events:?}");
        }
        poller.modify(&b, Event::readable(3)).unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.is_empty() && std::time::Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(events.iter().any(|e| e.key == 3 && e.readable));
    }

    #[test]
    fn notify_wakes_a_blocked_wait_across_threads() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waiter = std::sync::Arc::clone(&poller);
        let started = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            let mut events = Vec::new();
            // Long timeout: only notify() brings this back quickly.
            waiter
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            events
        });
        std::thread::sleep(Duration::from_millis(50));
        poller.notify().unwrap();
        let events = handle.join().unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "notify took {:?}",
            started.elapsed()
        );
        // The notify key itself is never surfaced.
        assert!(events.iter().all(|e| e.key != NOTIFY_KEY));
    }

    #[test]
    fn reserved_key_is_rejected() {
        let poller = Poller::new().unwrap();
        let (_a, b) = tcp_pair();
        assert!(poller.add(&b, Event::readable(NOTIFY_KEY)).is_err());
    }

    #[test]
    fn hangup_reports_as_readable_eof() {
        let poller = Poller::new().unwrap();
        let (a, b) = tcp_pair();
        b.set_nonblocking(true).unwrap();
        poller.add(&b, Event::readable(9)).unwrap();
        drop(a);
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.is_empty() && std::time::Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
        }
        assert!(
            events.iter().any(|e| e.key == 9 && e.readable),
            "{events:?}"
        );
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 0, "EOF observable");
    }
}
